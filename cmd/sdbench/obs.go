package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"text/tabwriter"

	"socksdirect/internal/experiments"
	"socksdirect/internal/monitor/shard"
	"socksdirect/internal/obs"
	"socksdirect/internal/telemetry"
)

// sdstatCmd runs a workload and prints the per-connection flow table —
// the `ss` of the simulated cluster: one row per socket endpoint with
// transport, state, byte/message counters, takeovers, recoveries,
// resets, send-ring high-water and the monitor epoch the endpoint saw.
//
// The cluster workload additionally prints every survivor monitor's
// membership view (peer, state, epoch) — the operator's way to ask "who
// does each host think is alive" after a drill.
//
// Every workload's output ends with the backpressure counter block —
// the shed/refusal/timeout totals an operator reads to tell "overloaded
// and shedding cleanly" from "wedged" (see README "Operating under
// overload").
//
//	sdbench sdstat [-json] [crash|chaos|smoke|cluster|overload]
func sdstatCmd(args []string) {
	fs := flag.NewFlagSet("sdstat", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the flow table as JSON")
	fs.Parse(args)
	workload := "crash"
	if fs.NArg() > 0 {
		workload = fs.Arg(0)
	}

	obs.Reset()
	obs.SetArmed(false) // induced faults are expected; no dumps
	var members []experiments.ClusterMember
	switch workload {
	case "crash":
		r := experiments.Crash(2, 2, 1024)
		fmt.Fprintln(os.Stderr, r)
	case "chaos":
		r := experiments.Chaos(120, 1024)
		fmt.Fprintln(os.Stderr, r)
	case "smoke":
		r := experiments.ObsSmoke(20, 512)
		fmt.Fprintln(os.Stderr, r)
	case "cluster":
		r := experiments.ClusterSoak(experiments.ClusterConfig{})
		fmt.Fprintln(os.Stderr, r)
		members = r.Membership
	case "overload":
		r := experiments.Overload(experiments.OverloadConfig{})
		fmt.Fprintln(os.Stderr, r)
	default:
		fmt.Fprintf(os.Stderr, "sdstat: unknown workload %q (want crash, chaos, smoke, cluster or overload)\n", workload)
		os.Exit(2)
	}
	obs.SetArmed(true)

	flows := obs.Flows()
	bpKeys, bp := backpressureCounters()
	if *asJSON {
		out := any(flows)
		if workload == "cluster" {
			out = struct {
				Flows      any                         `json:"flows"`
				Membership []experiments.ClusterMember `json:"membership"`
			}{flows, members}
		}
		if workload == "overload" {
			out = struct {
				Flows        any              `json:"flows"`
				Backpressure map[string]int64 `json:"backpressure"`
			}{flows, bp}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "sdstat: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if members != nil {
		tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
		fmt.Fprintln(tw, "VIEWER\tPEER\tSTATE\tEPOCH\tMISSED")
		for _, m := range members {
			fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\n", m.Viewer, m.Host, m.State, m.Epoch, m.Missed)
		}
		tw.Flush()
		fmt.Println()
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "HOST\tPID\tQID\tSHARD\tPEER\tTRANSPORT\tSTATE\tBYTES-TX\tBYTES-RX\tMSGS-TX\tMSGS-RX\tTAKEOVER\tRECOV\tRESETS\tRING-HW\tEPOCH")
	for _, f := range flows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%s\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			f.Host, f.PID, f.QID, f.Shard, f.Peer, f.Transport, f.State,
			f.BytesTx, f.BytesRx, f.MsgsTx, f.MsgsRx,
			f.Takeovers, f.Recovs, f.Resets, f.RingHW, f.Epoch)
	}
	tw.Flush()
	fmt.Printf("%d flows\n", len(flows))

	fmt.Println()
	tw = tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "BACKPRESSURE COUNTER\tVALUE")
	for _, k := range bpKeys {
		fmt.Fprintf(tw, "%s\t%d\n", k, bp[k])
	}
	tw.Flush()
}

// backpressureCounters collects the overload valves' counters — how much
// work the run turned away, and through which valve. All zeros means the
// run never hit a cap; a wedge (hung flows) with zeros here means the
// stall is NOT clean shedding and needs the flight recorder.
func backpressureCounters() ([]string, map[string]int64) {
	snap := telemetry.Capture()
	keys := []string{
		telemetry.CoreEWouldBlock,
		telemetry.CoreDeadlineTimeouts,
		telemetry.CoreConnRefused,
		telemetry.MemPoolQuotaRejects,
	}
	for i := 0; i < shard.DefaultCount; i++ {
		keys = append(keys, telemetry.MonShardInboxShed(i))
	}
	vals := make(map[string]int64, len(keys))
	for _, k := range keys {
		vals[k] = snap.Get(k)
	}
	return keys, vals
}

// obssmokeCmd is the CI observability gate: a short cross-host echo under
// tracing must yield one complete connect trace (>=5 causally ordered
// hops, breakdown summing to the end-to-end latency), and an induced
// retry exhaustion must produce exactly one flight-recorder dump. Both
// artifacts are written to -o for upload.
//
//	sdbench obssmoke [-o dir]
func obssmokeCmd(args []string) {
	fs := flag.NewFlagSet("obssmoke", flag.ExitOnError)
	outDir := fs.String("o", ".", "directory for trace and recorder artifacts")
	fs.Parse(args)

	smoke := experiments.ObsSmoke(20, 512)
	fmt.Println(smoke)
	// The smoke's rings are still live: snapshot them as the connect-trace
	// artifact before the drill resets the obs state.
	connTrace := obs.ForceDump(obs.TrigManual, smoke.RunNs, "obssmoke connect trace")
	writeDump(filepath.Join(*outDir, "sd-obssmoke-connect.trace.json"), connTrace)

	drill := experiments.ObsRetryDrill(30, 1024)
	fmt.Println(drill)
	if drill.Dumps > 0 {
		writeDump(filepath.Join(*outDir, "sd-obssmoke-recorder.trace.json"), drill.Dump)
	}

	if !smoke.Passed() || !drill.Passed() {
		os.Exit(1)
	}
}

func writeDump(path string, d obs.Dump) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "obssmoke: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := d.WriteChrome(f); err != nil {
		fmt.Fprintf(os.Stderr, "obssmoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d spans, %d flows)\n", path, len(d.Spans), len(d.Flows))
}

// failureDump ships a flight-recorder artifact when a soak command fails
// its acceptance bar, so the failing run carries its own evidence.
func failureDump(name string) {
	path := fmt.Sprintf("sd-flight-%s-failure.trace.json", name)
	d := obs.ForceDump(obs.TrigManual, 0, name+" soak failed its acceptance bar")
	f, err := os.Create(path)
	if err != nil {
		return
	}
	defer f.Close()
	if d.WriteChrome(f) == nil {
		fmt.Fprintf(os.Stderr, "wrote failure evidence to %s\n", path)
	}
}
