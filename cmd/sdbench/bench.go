package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"socksdirect/internal/experiments"
)

// benchCmd runs the continuous-benchmark suite and writes a
// schema-versioned BENCH_<timestamp>.json report. With -json the same
// report is also emitted on stdout, and stdout carries nothing else —
// the table and the "wrote ..." note move to stderr so a pipeline can
// unmarshal the stream directly.
func benchCmd(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	short := fs.Bool("short", false, "CI smoke mode: ~10x fewer messages per workload")
	out := fs.String("o", "", "output path (default BENCH_<timestamp>.json)")
	asJSON := fs.Bool("json", false, "emit the report JSON on stdout (all other output moves to stderr)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: sdbench bench [-short] [-json] [-o out.json]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 0 {
		fs.Usage()
		os.Exit(2)
	}

	stdout := os.Stdout
	if *asJSON {
		// Keep stdout pure JSON: anything the suite or this command prints
		// via fmt.Print* goes to stderr instead (fmt resolves os.Stdout at
		// each call, so the swap covers the whole run).
		os.Stdout = os.Stderr
		defer func() { os.Stdout = stdout }()
	}

	rep := experiments.RunBenchSuite(*short)
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", time.Now().UTC().Format("20060102T150405Z"))
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%-22s %10s %12s %10s %10s %11s %11s\n",
		"workload", "msg(B)", "msgs/sec", "p50(us)", "p99(us)", "allocs/op", "bytes/op")
	for _, e := range rep.Entries {
		clock := "virtual"
		if !e.Deterministic {
			clock = "wall"
		}
		fmt.Printf("%-22s %10d %12.0f %10.2f %10.2f %11.2f %11.0f  (%s)\n",
			e.Name, e.MsgBytes, e.MsgsPerSec,
			float64(e.P50Ns)/1000, float64(e.P99Ns)/1000,
			e.AllocsPerOp, e.BytesPerOp, clock)
	}
	fmt.Printf("wrote %s (schema %s, short=%v)\n", path, rep.Schema, rep.Short)
	if *asJSON {
		stdout.Write(data)
	}
}

// compareCmd diffs two BENCH reports and exits 1 if the newer one
// regresses past the threshold (CI gate). -allocs-only restricts the
// gate to allocs/op with an absolute slack, for the zero-alloc gate.
// All human-readable output goes to stderr; stdout stays empty unless
// -json asks for the machine-readable verdict.
func compareCmd(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.30, "relative regression threshold (0.30 = 30%)")
	all := fs.Bool("all", false, "also compare timing of wall-clock (machine-dependent) entries")
	allocsOnly := fs.Bool("allocs-only", false, "gate only allocs/op, with an absolute slack (-alloc-slack)")
	allocSlack := fs.Float64("alloc-slack", 0.05, "allowed absolute allocs/op increase with -allocs-only")
	asJSON := fs.Bool("json", false, "emit the comparison verdict as JSON on stdout")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: sdbench compare [-threshold 0.30] [-all] [-allocs-only [-alloc-slack 0.05]] [-json] baseline.json current.json")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		os.Exit(2)
	}
	baseline := loadBench(fs.Arg(0))
	current := loadBench(fs.Arg(1))

	var regs []experiments.BenchRegression
	var err error
	if *allocsOnly {
		regs, err = experiments.CompareBenchAllocs(baseline, current, *allocSlack)
	} else {
		regs, err = experiments.CompareBench(baseline, current, *threshold, *all)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "compare: %v\n", err)
		os.Exit(2)
	}
	if *asJSON {
		verdict := struct {
			OK          bool                          `json:"ok"`
			Regressions []experiments.BenchRegression `json:"regressions"`
		}{OK: len(regs) == 0, Regressions: regs}
		if verdict.Regressions == nil {
			verdict.Regressions = []experiments.BenchRegression{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(verdict); err != nil {
			fmt.Fprintf(os.Stderr, "compare: %v\n", err)
			os.Exit(2)
		}
	}
	if len(regs) == 0 {
		if *allocsOnly {
			fmt.Fprintf(os.Stderr, "compare: %d entries within +%.2f allocs/op of baseline\n",
				len(baseline.Entries), *allocSlack)
		} else {
			fmt.Fprintf(os.Stderr, "compare: %d entries within %.0f%% of baseline\n",
				len(baseline.Entries), *threshold*100)
		}
		return
	}
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "REGRESSION %s\n", r)
	}
	os.Exit(1)
}

func loadBench(path string) experiments.BenchReport {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compare: %v\n", err)
		os.Exit(2)
	}
	var rep experiments.BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		fmt.Fprintf(os.Stderr, "compare: %s: %v\n", path, err)
		os.Exit(2)
	}
	return rep
}
