package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"socksdirect/internal/experiments"
)

// benchCmd runs the continuous-benchmark suite and writes a
// schema-versioned BENCH_<timestamp>.json report.
func benchCmd(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	short := fs.Bool("short", false, "CI smoke mode: ~10x fewer messages per workload")
	out := fs.String("o", "", "output path (default BENCH_<timestamp>.json)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: sdbench bench [-short] [-o out.json]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 0 {
		fs.Usage()
		os.Exit(2)
	}

	rep := experiments.RunBenchSuite(*short)
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", time.Now().UTC().Format("20060102T150405Z"))
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%-22s %10s %12s %10s %10s %11s %11s\n",
		"workload", "msg(B)", "msgs/sec", "p50(us)", "p99(us)", "allocs/op", "bytes/op")
	for _, e := range rep.Entries {
		clock := "virtual"
		if !e.Deterministic {
			clock = "wall"
		}
		fmt.Printf("%-22s %10d %12.0f %10.2f %10.2f %11.2f %11.0f  (%s)\n",
			e.Name, e.MsgBytes, e.MsgsPerSec,
			float64(e.P50Ns)/1000, float64(e.P99Ns)/1000,
			e.AllocsPerOp, e.BytesPerOp, clock)
	}
	fmt.Printf("wrote %s (schema %s, short=%v)\n", path, rep.Schema, rep.Short)
}

// compareCmd diffs two BENCH reports and exits 1 if the newer one
// regresses past the threshold (CI gate).
func compareCmd(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.30, "relative regression threshold (0.30 = 30%)")
	all := fs.Bool("all", false, "also compare timing of wall-clock (machine-dependent) entries")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: sdbench compare [-threshold 0.30] [-all] baseline.json current.json")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		os.Exit(2)
	}
	baseline := loadBench(fs.Arg(0))
	current := loadBench(fs.Arg(1))

	regs, err := experiments.CompareBench(baseline, current, *threshold, *all)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compare: %v\n", err)
		os.Exit(2)
	}
	if len(regs) == 0 {
		fmt.Printf("compare: %d entries within %.0f%% of baseline\n",
			len(baseline.Entries), *threshold*100)
		return
	}
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "REGRESSION %s\n", r)
	}
	os.Exit(1)
}

func loadBench(path string) experiments.BenchReport {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compare: %v\n", err)
		os.Exit(2)
	}
	var rep experiments.BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		fmt.Fprintf(os.Stderr, "compare: %s: %v\n", path, err)
		os.Exit(2)
	}
	return rep
}
