package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"socksdirect/internal/experiments"
)

// captureStdout runs fn with os.Stdout redirected into a pipe and
// returns everything written to it.
func captureStdout(t *testing.T, fn func()) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan []byte)
	go func() {
		b, _ := io.ReadAll(r)
		done <- b
	}()
	fn()
	w.Close()
	return <-done
}

// TestBenchCompareStdoutPurity is the regression test for the harness
// bug where table rows and notes interleaved with machine-readable
// output: `bench -json` stdout must unmarshal as a BenchReport with no
// surrounding noise, `compare -json` stdout must unmarshal as a verdict,
// and `compare` without -json must write nothing to stdout at all.
func TestBenchCompareStdoutPurity(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	stdout := captureStdout(t, func() {
		benchCmd([]string{"-short", "-json", "-o", out})
	})

	var rep experiments.BenchReport
	if err := json.Unmarshal(stdout, &rep); err != nil {
		t.Fatalf("bench -json stdout is not pure JSON: %v\nstdout:\n%s", err, stdout)
	}
	if len(rep.Entries) == 0 {
		t.Fatal("bench -json: report has no entries")
	}
	for _, e := range rep.Entries {
		if e.Msgs > 0 && e.P50Ns == 0 {
			t.Errorf("%s: p50_ns is zero (latency not measured)", e.Name)
		}
		if e.Msgs > 0 && e.P99Ns == 0 {
			t.Errorf("%s: p99_ns is zero (latency not measured)", e.Name)
		}
	}

	// Self-compare must pass, and its stdout must be the verdict alone.
	stdout = captureStdout(t, func() {
		compareCmd([]string{"-json", out, out})
	})
	var verdict struct {
		OK          bool                          `json:"ok"`
		Regressions []experiments.BenchRegression `json:"regressions"`
	}
	if err := json.Unmarshal(stdout, &verdict); err != nil {
		t.Fatalf("compare -json stdout is not pure JSON: %v\nstdout:\n%s", err, stdout)
	}
	if !verdict.OK || len(verdict.Regressions) != 0 {
		t.Fatalf("self-compare reported regressions: %+v", verdict.Regressions)
	}

	// Without -json, compare keeps stdout silent (summary goes to stderr).
	stdout = captureStdout(t, func() {
		compareCmd([]string{"-allocs-only", out, out})
	})
	if len(bytes.TrimSpace(stdout)) != 0 {
		t.Errorf("compare wrote to stdout without -json: %q", stdout)
	}
}
